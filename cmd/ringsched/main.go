// Command ringsched runs one scheduling algorithm on one instance and
// reports the schedule.
//
// The instance comes from a JSON file (-in, as produced by ringgen), from
// an inline load vector (-loads "100,0,0,25"), or from a named Table 1
// case (-case I-m100-point-huge).
//
// Examples:
//
//	ringsched -loads 100,0,0,0,0,0,0,0 -alg C1
//	ringsched -case II-m100-rand500 -alg A2 -opt
//	ringsched -in instance.json -alg cap -gantt
//	ringsched -loads 60,0,0,0,0,0 -alg C2 -distributed
//	ringsched -case III-m100-L10 -alg C1 -metrics -trace-out run.jsonl
//	ringsched -loads 1000000,0,0,0 -alg C2 -engine bigring -metrics
//	ringsched -loads 100,0,0,0,0,0,0,0 -alg A1 -faults 7:loss=0.1,dup=0.05,crashes=2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ringsched"
	"ringsched/internal/capring"
	"ringsched/internal/cli"
	"ringsched/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "ringsched: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ringsched", flag.ContinueOnError)
	inFile := fs.String("in", "", "instance JSON file")
	loads := fs.String("loads", "", "inline comma-separated unit loads, e.g. 100,0,0,25")
	caseID := fs.String("case", "", "Table 1 case id, e.g. I-m100-point-huge")
	algName := fs.String("alg", "C1", "algorithm: A1,B1,C1,A2,B2,C2 or cap (§7, unit-capacity links)")
	engine := fs.String("engine", "pool", `engine: "pool" (general-purpose) or "bigring" (allocation-free flat-array engine for huge unit-job rings; no faults, capacities, traces or -distributed)`)
	engineWorkers := fs.Int("engine-workers", 0, "bigring only: ring spans stepped in parallel (0 = GOMAXPROCS on huge rings, sequential otherwise; results identical at any count)")
	showOpt := fs.Bool("opt", false, "also compute the exact optimum / lower bound")
	gantt := fs.Bool("gantt", false, "print a utilization heat map of the schedule")
	distributed := fs.Bool("distributed", false, "run on the goroutine-per-processor runtime")
	showMetrics := fs.Bool("metrics", false, "collect run telemetry and print the summary")
	traceOut := fs.String("trace-out", "", "write the event trace and metrics as JSONL to this file")
	faults := fs.String("faults", "", `fault-injection "seed:spec", e.g. 7:loss=0.1,dup=0.05,crashes=2 (see README)`)
	progress := fs.Bool("progress", false, "print live step progress to stderr")
	debugAddr := fs.String("debug-addr", "", "serve net/http/pprof and expvar on this address, e.g. localhost:6060")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *debugAddr != "" {
		addr, err := cli.StartDebugServer(*debugAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(errw, "debug server: http://%s/debug/pprof/ and /debug/vars\n", addr)
	}

	in, err := cli.LoadInstance(*inFile, *loads, *caseID)
	if err != nil {
		return err
	}

	var alg ringsched.Algorithm
	var spec ringsched.Spec
	opts := ringsched.Options{Record: *gantt || *traceOut != ""}
	if *algName == "cap" {
		alg = capring.Algorithm{}
		opts.LinkCapacity = 1
	} else {
		spec, err = ringsched.AlgorithmByName(*algName)
		if err != nil {
			return err
		}
		alg = spec
	}

	// The big-ring engine trades generality for scale: it runs only the
	// bucket algorithms on fault-free unit instances and records no
	// event trace, so every feature it cannot reproduce exactly is
	// refused up front rather than silently ignored.
	switch *engine {
	case "pool":
		if *engineWorkers != 0 {
			return fmt.Errorf("-engine-workers applies only to -engine=bigring")
		}
	case "bigring":
		switch {
		case *algName == "cap":
			return fmt.Errorf("-engine=bigring supports only the bucket algorithms (A1..C2), not cap")
		case *faults != "":
			return fmt.Errorf("-engine=bigring does not support -faults; use the pool engine")
		case *distributed:
			return fmt.Errorf("-engine=bigring is incompatible with -distributed")
		case *gantt || *traceOut != "":
			return fmt.Errorf("-engine=bigring records no event trace; -gantt and -trace-out need the pool engine")
		}
	default:
		return fmt.Errorf("unknown -engine %q (want pool or bigring)", *engine)
	}

	// Fault injection: bind the seeded plane to this ring, wrap the
	// algorithm in the robust migration protocol, and point the engine at
	// the plane so it can schedule drops, stalls and crash-stops.
	var plane *ringsched.FaultPlane
	if *faults != "" {
		if *algName == "cap" {
			return fmt.Errorf("-faults is not supported with the capacitated algorithm")
		}
		plane, err = ringsched.ParseFaultPlane(*faults, in.M, 0)
		if err != nil {
			return err
		}
		alg = ringsched.RobustAlgorithm(alg, plane, ringsched.FaultProtocol{})
		opts.Faults = plane
	}

	// Assemble the observability chain: an aggregating collector when
	// telemetry or an export is wanted, a live progress printer on top.
	var rm *ringsched.RingMetrics
	var collectors []ringsched.Collector
	if *showMetrics || *traceOut != "" {
		// On big-ring-scale instances the collector's per-step Gini sort
		// (O(m log m)) would cost more than the engine step itself.
		skipGini := *engine == "bigring" && in.M >= 100_000
		rm = ringsched.NewRingMetrics(ringsched.MetricsOpts{Series: *traceOut != "", SkipGini: skipGini})
		collectors = append(collectors, rm)
	}
	if *progress {
		collectors = append(collectors, ringsched.NewProgressCollector(errw, 1000))
	}
	opts.Collector = ringsched.MultiCollector(collectors...)

	fmt.Fprintf(out, "instance: %v   lower bound: %d\n", in, ringsched.LowerBound(in))

	if *engine == "bigring" {
		res, err := ringsched.ScheduleBigRing(in, spec, ringsched.BigRingOptions{Collector: opts.Collector, Workers: *engineWorkers})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s (big-ring engine): makespan=%d steps=%d jobhops=%d messages=%d utilization=%.1f%%\n",
			res.Algorithm, res.Makespan, res.Steps, res.JobHops, res.Messages, 100*res.Utilization())
		if err := emitObservability(out, rm, *showMetrics, "", *caseID, nil); err != nil {
			return err
		}
		return maybeOpt(out, in, *showOpt, *algName, res.Makespan)
	}

	if *distributed {
		dopts := ringsched.DistOptions{Collector: opts.Collector}
		if plane != nil {
			// Assigning a nil *FaultPlane would still make the interface
			// field non-nil and switch the runtime onto the fault path.
			dopts.Faults = plane
		}
		res, err := ringsched.ScheduleDistributed(in, alg, dopts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s (goroutine runtime): makespan=%d steps=%d jobhops=%d messages=%d\n",
			res.Algorithm, res.Makespan, res.Steps, res.JobHops, res.Messages)
		emitFaults(out, rm, plane)
		if err := emitObservability(out, rm, *showMetrics, *traceOut, *caseID, nil); err != nil {
			return err
		}
		return maybeOpt(out, in, *showOpt, *algName, res.Makespan)
	}

	res, err := ringsched.Schedule(in, alg, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s: makespan=%d steps=%d jobhops=%d messages=%d utilization=%.1f%%\n",
		res.Algorithm, res.Makespan, res.Steps, res.JobHops, res.Messages, 100*res.Utilization())
	if *gantt && res.Trace != nil {
		heat, err := res.Trace.RenderGantt(72)
		if err != nil {
			return fmt.Errorf("-gantt: %w", err)
		}
		fmt.Fprint(out, heat)
	}
	if plane != nil && res.Trace != nil {
		// The trace is on hand anyway; prove the robustness invariants
		// (no unit lost or double-processed, no work on dead processors).
		if err := ringsched.VerifyFaulty(in, res.Trace, plane); err != nil {
			return fmt.Errorf("fault invariants violated: %w", err)
		}
		fmt.Fprintln(out, "fault invariants: ok (no work lost or double-processed)")
	}
	emitFaults(out, rm, plane)
	if err := emitObservability(out, rm, *showMetrics, *traceOut, *caseID, res.Trace); err != nil {
		return err
	}
	return maybeOpt(out, in, *showOpt, *algName, res.Makespan)
}

// emitFaults prints the fault plane's accounting, folds it into the
// telemetry summary, and publishes it on expvar for the debug server.
func emitFaults(out io.Writer, rm *ringsched.RingMetrics, plane *ringsched.FaultPlane) {
	if plane == nil {
		return
	}
	f := plane.Report()
	if rm != nil {
		rm.SetFaults(f)
	}
	cli.PublishFaults("ringsched.faults", f)
	fmt.Fprintf(out, "faults: drops=%d dups=%d delays=%d stall-steps=%d crashes=%d retries=%d acks=%d dup-discards=%d rehomed=%d reclaimed=%d purged=%d\n",
		f.Drops, f.Dups, f.Delays, f.StallSteps, f.Crashes, f.Retries, f.Acks,
		f.DupDiscards, f.RehomedWork, f.ReclaimedWork, f.PurgedWork)
}

// emitObservability prints the telemetry summary and/or writes the JSONL
// export (trace section when the engine recorded one, then metrics).
func emitObservability(out io.Writer, rm *ringsched.RingMetrics, show bool, traceOut, caseID string, trace *ringsched.Trace) error {
	if rm == nil {
		return nil
	}
	if show {
		fmt.Fprint(out, stats.RenderTelemetry(rm.Summary()))
	}
	if traceOut == "" {
		return nil
	}
	f, err := os.Create(traceOut)
	if err != nil {
		return err
	}
	defer f.Close()
	if trace != nil {
		if err := trace.WriteJSONL(f, caseID); err != nil {
			return err
		}
	}
	if err := rm.WriteJSONL(f, caseID); err != nil {
		return err
	}
	fmt.Fprintf(out, "trace written to %s\n", traceOut)
	return f.Close()
}

func maybeOpt(out io.Writer, in ringsched.Instance, show bool, algName string, makespan int64) error {
	if !show {
		return nil
	}
	var o ringsched.OptResult
	if algName == "cap" {
		o = ringsched.OptimalCapacitated(in, ringsched.OptLimits{})
	} else {
		o = ringsched.Optimal(in, ringsched.OptLimits{})
	}
	rel := "="
	if !o.Exact {
		rel = ">="
	}
	fmt.Fprintf(out, "optimum %s %d (%s); approximation factor <= %.3f\n",
		rel, o.Length, o.Method, float64(makespan)/float64(o.Length))
	return nil
}
