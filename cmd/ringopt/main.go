// Command ringopt computes exact optimal schedule lengths and certified
// lower bounds for ring scheduling instances — the scoring side of the
// paper's §6 experiments.
//
// Examples:
//
//	ringopt -loads 100,0,0,0,0,0
//	ringopt -case III-m100-L100 -deadline 30s
//	ringopt -in instance.json -capacitated
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ringsched"
	"ringsched/internal/cli"
	"ringsched/internal/lb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ringopt: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ringopt", flag.ContinueOnError)
	inFile := fs.String("in", "", "instance JSON file")
	loads := fs.String("loads", "", "inline comma-separated unit loads")
	caseID := fs.String("case", "", "Table 1 case id")
	deadline := fs.Duration("deadline", 30*time.Second, "solver budget")
	capacitated := fs.Bool("capacitated", false, "solve under unit-capacity links (§7 model)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in, err := cli.LoadInstance(*inFile, *loads, *caseID)
	if err != nil {
		return err
	}

	works := in.Works()
	fmt.Fprintf(out, "instance: %v\n", in)
	fmt.Fprintf(out, "lower bounds: lemma1-window=%d ceil(n/m)=%d p_max=%d",
		lb.WindowBound(works), lb.AverageBound(in), lb.PMaxBound(in))
	if *capacitated {
		fmt.Fprintf(out, " lemma10-window=%d", lb.CapWindowBound(works))
	}
	fmt.Fprintln(out)

	lim := ringsched.OptLimits{Deadline: *deadline}
	start := time.Now()
	var o ringsched.OptResult
	if *capacitated {
		o = ringsched.OptimalCapacitated(in, lim)
	} else {
		o = ringsched.Optimal(in, lim)
	}
	rel := "="
	if !o.Exact {
		rel = ">="
	}
	fmt.Fprintf(out, "optimum %s %d   method=%s flow-calls=%d elapsed=%s\n",
		rel, o.Length, o.Method, o.FlowCalls, time.Since(start).Round(time.Millisecond))
	return nil
}
