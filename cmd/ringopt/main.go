// Command ringopt computes exact optimal schedule lengths and certified
// lower bounds for ring scheduling instances — the scoring side of the
// paper's §6 experiments.
//
// Examples:
//
//	ringopt -loads 100,0,0,0,0,0
//	ringopt -case III-m100-L100 -deadline 30s
//	ringopt -case II-m10-rand100,II-m100-rand100 -workers 2
//	ringopt -in instance.json -capacitated
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"ringsched"
	"ringsched/internal/cli"
	"ringsched/internal/instance"
	"ringsched/internal/lb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ringopt: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ringopt", flag.ContinueOnError)
	inFile := fs.String("in", "", "instance JSON file")
	loads := fs.String("loads", "", "inline comma-separated unit loads")
	caseID := fs.String("case", "", "Table 1 case id, or a comma-separated list of ids")
	deadline := fs.Duration("deadline", 30*time.Second, "solver budget (per instance)")
	capacitated := fs.Bool("capacitated", false, "solve under unit-capacity links (§7 model)")
	workers := fs.Int("workers", 0, "instances to solve concurrently (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	type item struct {
		in instance.Instance
	}
	var items []item
	if ids := strings.Split(*caseID, ","); *caseID != "" && len(ids) > 1 {
		if *inFile != "" || *loads != "" {
			return fmt.Errorf("specify exactly one of -in, -loads, -case")
		}
		for _, id := range ids {
			in, err := cli.LoadInstance("", "", strings.TrimSpace(id))
			if err != nil {
				return err
			}
			items = append(items, item{in})
		}
	} else {
		in, err := cli.LoadInstance(*inFile, *loads, *caseID)
		if err != nil {
			return err
		}
		items = append(items, item{in})
	}

	solve := func(in instance.Instance, w io.Writer) {
		works := in.Works()
		fmt.Fprintf(w, "instance: %v\n", in)
		fmt.Fprintf(w, "lower bounds: lemma1-window=%d ceil(n/m)=%d p_max=%d",
			lb.WindowBound(works), lb.AverageBound(in), lb.PMaxBound(in))
		if *capacitated {
			fmt.Fprintf(w, " lemma10-window=%d", lb.CapWindowBound(works))
		}
		fmt.Fprintln(w)

		lim := ringsched.OptLimits{Deadline: *deadline}
		start := time.Now()
		var o ringsched.OptResult
		if *capacitated {
			o = ringsched.OptimalCapacitated(in, lim)
		} else {
			o = ringsched.Optimal(in, lim)
		}
		rel := "="
		if !o.Exact {
			rel = ">="
		}
		fmt.Fprintf(w, "optimum %s %d   method=%s flow-calls=%d elapsed=%s\n",
			rel, o.Length, o.Method, o.FlowCalls, time.Since(start).Round(time.Millisecond))
	}

	// Solve instances concurrently, but print buffered per-instance output
	// strictly in input order.
	n := *workers
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > len(items) {
		n = len(items)
	}
	bufs := make([]bytes.Buffer, len(items))
	var wg sync.WaitGroup
	sem := make(chan struct{}, n)
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			solve(items[i].in, &bufs[i])
		}(i)
	}
	wg.Wait()
	for i := range bufs {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if _, err := out.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}
