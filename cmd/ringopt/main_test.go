package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

func TestOptLoads(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-loads", "100,0,0,0,0,0,0,0,0,0"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"lemma1-window=10", "optimum = ", "method="} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestOptCapacitated(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-loads", "30,0,0,0,0", "-capacitated"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "lemma10-window=") || !strings.Contains(s, "time-expanded-flow") {
		t.Errorf("capacitated output:\n%s", s)
	}
}

func TestOptCase(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-case", "II-m10-rand100"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "optimum = ") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestOptErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{},
		{"-case", "junk"},
		{"-nonsense"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

func TestOptMultiCaseParallel(t *testing.T) {
	args := []string{"-case", "II-m10-rand100, III-m100-L10", "-workers", "2"}
	var out1 bytes.Buffer
	if err := run(args, &out1); err != nil {
		t.Fatal(err)
	}
	s := out1.String()
	if got := strings.Count(s, "optimum"); got != 2 {
		t.Fatalf("optimum lines = %d, want 2:\n%s", got, s)
	}
	if got := strings.Count(s, "instance:"); got != 2 {
		t.Errorf("instance lines = %d, want 2", got)
	}
	// Output order follows input order whatever order the solves finish in
	// (elapsed= is the only timing-dependent field).
	var out2 bytes.Buffer
	if err := run(args, &out2); err != nil {
		t.Fatal(err)
	}
	elapsedRe := regexp.MustCompile(`elapsed=\S+`)
	a := elapsedRe.ReplaceAll(out1.Bytes(), []byte("elapsed=X"))
	b := elapsedRe.ReplaceAll(out2.Bytes(), []byte("elapsed=X"))
	if !bytes.Equal(a, b) {
		t.Errorf("two parallel runs produced different output:\n%s\n---\n%s", a, b)
	}
}

func TestOptMultiCaseRejectsMixedSelectors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-case", "a,b", "-loads", "1,2"}, &out); err == nil {
		t.Error("mixed -case list and -loads accepted")
	}
}
