package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestOptLoads(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-loads", "100,0,0,0,0,0,0,0,0,0"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"lemma1-window=10", "optimum = ", "method="} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
}

func TestOptCapacitated(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-loads", "30,0,0,0,0", "-capacitated"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "lemma10-window=") || !strings.Contains(s, "time-expanded-flow") {
		t.Errorf("capacitated output:\n%s", s)
	}
}

func TestOptCase(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-case", "II-m10-rand100"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "optimum = ") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestOptErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{},
		{"-case", "junk"},
		{"-nonsense"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}
